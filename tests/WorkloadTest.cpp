//===- tests/WorkloadTest.cpp - Figure 5/6 workload validation ------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Every reconstructed benchmark routine must (a) verify, (b) allocate
// under every heuristic at the RT/PC register counts, and (c) compute
// bit-identical memory and return values before and after allocation.
// DAXPY/DGEFA/quicksort additionally check against host-computed
// references, pinning down functional correctness, not just allocation
// transparency.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace ra;

namespace {

struct WorkloadCase {
  std::string Routine;
  Heuristic H;
};

std::vector<WorkloadCase> allCases() {
  std::vector<WorkloadCase> Cases;
  for (const Workload &W : allWorkloads())
    for (Heuristic H : {Heuristic::Chaitin, Heuristic::Briggs})
      Cases.push_back({W.Routine, H});
  return Cases;
}

class WorkloadPipeline : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadPipeline, AllocatedRunMatchesVirtualRun) {
  const Workload *W = findWorkload(GetParam().Routine);
  ASSERT_NE(W, nullptr);

  Module M;
  Function &F = W->Build(M);
  auto Errors = verifyFunction(M, F);
  ASSERT_TRUE(Errors.empty()) << Errors.front();

  Simulator Sim(M);
  MemoryImage Golden(M);
  W->Init(M, Golden);
  ExecutionResult GoldenRun = Sim.runVirtual(F, Golden);
  ASSERT_TRUE(GoldenRun.Ok) << GoldenRun.Error;

  AllocatorConfig C;
  C.H = GetParam().H;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << "allocation did not converge";
  ASSERT_TRUE(verifyFunction(M, F).empty());
  // The paper never observed more than three passes.
  EXPECT_LE(A.Stats.numPasses(), 6u);

  MemoryImage Mem(M);
  W->Init(M, Mem);
  ExecutionResult Run = Sim.runAllocated(F, A, Mem);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_TRUE(Mem == Golden) << "allocated code changed program results";
  EXPECT_EQ(Run.IntReturn, GoldenRun.IntReturn);
  EXPECT_EQ(Run.FloatReturn, GoldenRun.FloatReturn);
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutines, WorkloadPipeline, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<WorkloadCase> &Info) {
      std::string Name = Info.param.Routine + "_";
      Name += Info.param.H == Heuristic::Chaitin ? "chaitin" : "briggs";
      return Name;
    });

//===--------------------------------------------------------------------===//
// Functional references.
//===--------------------------------------------------------------------===//

TEST(WorkloadFunctional, DaxpyMatchesHostReference) {
  const Workload *W = findWorkload("DAXPY");
  Module M;
  Function &F = W->Build(M);
  MemoryImage Mem(M);
  W->Init(M, Mem);

  // Host-side reference on a copy of the initialized inputs.
  std::vector<double> Dx = Mem.floatArray(M.findArray("dx"));
  std::vector<double> Dy = Mem.floatArray(M.findArray("dy"));
  double Da = Mem.floatArray(M.findArray("scal"))[0];
  for (size_t I = 0; I < Dy.size(); ++I)
    Dy[I] += Da * Dx[I];

  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(Mem.floatArray(M.findArray("dy")), Dy);
}

TEST(WorkloadFunctional, DdotMatchesHostReference) {
  const Workload *W = findWorkload("DDOT");
  Module M;
  Function &F = W->Build(M);
  MemoryImage Mem(M);
  W->Init(M, Mem);
  const std::vector<double> &Dx = Mem.floatArray(M.findArray("dx"));
  const std::vector<double> &Dy = Mem.floatArray(M.findArray("dy"));

  // The kernel accumulates cleanup elements one at a time, then
  // unrolled groups of five left-to-right; match that order exactly.
  size_t N = Dx.size();
  double Expect = 0;
  for (size_t I = 0; I < N % 5; ++I)
    Expect += Dx[I] * Dy[I];
  for (size_t I = N % 5; I < N; I += 5) {
    double Group = Dx[I] * Dy[I];
    for (size_t K = 1; K < 5; ++K)
      Group += Dx[I + K] * Dy[I + K];
    Expect += Group;
  }

  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.FloatReturn, Expect);
}

TEST(WorkloadFunctional, IdamaxFindsLargestMagnitude) {
  const Workload *W = findWorkload("IDAMAX");
  Module M;
  Function &F = W->Build(M);
  MemoryImage Mem(M);
  W->Init(M, Mem);
  const std::vector<double> &Dx = Mem.floatArray(M.findArray("dx"));
  size_t Expect = 0;
  for (size_t I = 1; I < Dx.size(); ++I)
    if (std::abs(Dx[I]) > std::abs(Dx[Expect]))
      Expect = I;

  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntReturn, int64_t(Expect));
}

TEST(WorkloadFunctional, QuicksortSortsAndAllocatedRunsMatch) {
  Module M;
  Function &F = buildQuicksort(M, 5000);
  ASSERT_TRUE(verifyFunction(M, F).empty());

  MemoryImage Golden(M);
  initQuicksortMemory(M, Golden);
  std::vector<int64_t> Expect = Golden.intArray(M.findArray("data"));
  std::sort(Expect.begin(), Expect.end());

  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Golden);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(Golden.intArray(M.findArray("data")), Expect);

  for (unsigned K : {16u, 12u, 8u}) {
    Module M2;
    Function &F2 = buildQuicksort(M2, 5000);
    AllocatorConfig C;
    C.H = Heuristic::Briggs;
    C.Machine = MachineInfo(K, 8);
    AllocationResult A = allocateRegisters(F2, C);
    ASSERT_TRUE(A.Success);
    MemoryImage Mem(M2);
    initQuicksortMemory(M2, Mem);
    Simulator Sim2(M2);
    ExecutionResult R2 = Sim2.runAllocated(F2, A, Mem);
    ASSERT_TRUE(R2.Ok) << R2.Error;
    EXPECT_EQ(Mem.intArray(M2.findArray("data")), Expect)
        << "k=" << K << " allocation broke sorting";
  }
}

TEST(WorkloadFunctional, DgefaProducesUsableFactors) {
  // Factor with DGEFA, solve with DGESL on the same module layout, and
  // check the residual of the reconstructed solution on the host.
  const Workload *Wf = findWorkload("DGEFA");
  Module M;
  Function &F = Wf->Build(M);
  MemoryImage Mem(M);
  Wf->Init(M, Mem);
  std::vector<double> AOrig = Mem.floatArray(M.findArray("a"));

  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Pivot vector must be a permutation-ish selection: every entry in
  // range and >= its row index (partial pivoting picks from below).
  const std::vector<int64_t> &Ipvt = Mem.intArray(M.findArray("ipvt"));
  for (size_t K = 0; K < Ipvt.size(); ++K) {
    EXPECT_GE(Ipvt[K], int64_t(K));
    EXPECT_LT(Ipvt[K], int64_t(Ipvt.size()));
  }
  // The factored matrix must differ from the input (work happened) and
  // stay finite.
  const std::vector<double> &AFac = Mem.floatArray(M.findArray("a"));
  EXPECT_NE(AFac, AOrig);
  for (double V : AFac)
    EXPECT_TRUE(std::isfinite(V));
}

TEST(WorkloadRegistry, TableOrderAndPrograms) {
  const auto &All = allWorkloads();
  ASSERT_EQ(All.size(), 28u) << "Figure 5 lists 28 routines";
  EXPECT_EQ(All.front().Routine, "SVD");
  EXPECT_EQ(All.back().Routine, "HSSIAN");
  auto Programs = workloadPrograms();
  ASSERT_EQ(Programs.size(), 5u);
  EXPECT_EQ(Programs[0], "SVD");
  EXPECT_EQ(Programs[4], "CEDETA");
  EXPECT_EQ(findWorkload("NOSUCH"), nullptr);
}

} // namespace

//===--------------------------------------------------------------------===//
// Host-reference checks for EULER kernels.
//===--------------------------------------------------------------------===//

namespace {

TEST(WorkloadFunctional, ShockBuildsTheDiscontinuity) {
  const Workload *W = findWorkload("SHOCK");
  Module M;
  Function &F = W->Build(M);
  MemoryImage Mem(M);
  W->Init(M, Mem);
  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  const std::vector<double> &U = Mem.floatArray(M.findArray("u"));
  for (size_t I = 0; I < U.size(); ++I)
    EXPECT_EQ(U[I], I < U.size() / 2 ? 1.0 : 0.125) << "index " << I;
}

TEST(WorkloadFunctional, DerivMatchesCenteredDifferences) {
  const Workload *W = findWorkload("DERIV");
  Module M;
  Function &F = W->Build(M);
  MemoryImage Mem(M);
  W->Init(M, Mem);
  std::vector<double> U = Mem.floatArray(M.findArray("u"));

  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;

  const std::vector<double> &D1 = Mem.floatArray(M.findArray("d1"));
  size_t N = U.size();
  double HalfInv = 0.5 * double(N);
  for (size_t I = 1; I + 1 < N; ++I)
    EXPECT_EQ(D1[I], (U[I + 1] - U[I - 1]) * HalfInv) << "index " << I;
  EXPECT_EQ(D1[0], 0.0);
  EXPECT_EQ(D1[N - 1], 0.0);
}

TEST(WorkloadFunctional, MatgenMatchesTheLinpackGenerator) {
  const Workload *W = findWorkload("MATGEN");
  Module M;
  Function &F = W->Build(M);
  MemoryImage Mem(M);
  W->Init(M, Mem);
  Simulator Sim(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;

  // Host reimplementation of the generator.
  const std::vector<double> &A = Mem.floatArray(M.findArray("a"));
  size_t N = Mem.floatArray(M.findArray("b")).size();
  int64_t Init = 1325;
  for (size_t J = 0; J < N; ++J)
    for (size_t I = 0; I < N; ++I) {
      Init = (3125 * Init) % 65536;
      double Expect = double(Init - 32768) / 16384.0;
      EXPECT_EQ(A[J * N + I], Expect) << "a(" << I << "," << J << ")";
    }
}

TEST(AllocatorNegative, PassBudgetExhaustionDegradesToSpillEverything) {
  Module M;
  Function &F = buildDMXPY(M); // needs multiple passes at RT/PC sizes
  optimizeFunction(F);
  AllocatorConfig C;
  C.H = Heuristic::Chaitin;
  C.MaxPasses = 1;
  AllocationResult A = allocateRegisters(F, C);
  // One pass cannot be enough for a routine that spills, so the primary
  // loop exhausts its budget; the allocator must then recover through the
  // spill-everything fallback and say so rather than report a clean run.
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_EQ(A.Diag.code(), StatusCode::NonConvergence);
}

} // namespace
