//===- tests/NegativeTraceTest.cpp - unwritable-output diagnostics --------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Negative paths for the observability writers, mirroring
// NegativeParseTest.cpp's contract: a bad destination must produce a
// structured Status (io-error code, message naming the path) — never a
// silent drop of collected events. rac and run_benches.sh surface these
// as non-zero exits (pinned by the rac_trace_unwritable ctest cases).
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace ra;

namespace {

trace::SessionLog oneEventLog() {
  trace::beginSession();
  RA_TRACE_INSTANT("Only", "test");
  return trace::endSession();
}

TEST(NegativeTrace, UnwritableDirectoryIsStructuredIoError) {
  const std::string Path = "/nonexistent-dir/trace.json";
  Status S = trace::writeChromeJson(Path, oneEventLog());
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::IoError);
  EXPECT_NE(S.toString().find("io-error"), std::string::npos);
  EXPECT_NE(S.toString().find(Path), std::string::npos)
      << "diagnostic must name the path: " << S.toString();
}

TEST(NegativeTrace, DirectoryAsDestinationIsStructuredIoError) {
  // The path exists but is not a writable file.
  Status S = trace::writeChromeJson("/", oneEventLog());
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::IoError);
}

TEST(NegativeTrace, WritableDestinationSucceeds) {
  std::string Path = ::testing::TempDir() + "negative_trace_ok.json";
  Status S = trace::writeChromeJson(Path, oneEventLog());
  EXPECT_TRUE(S.ok()) << S.toString();
  std::remove(Path.c_str());
}

} // namespace
