//===- tests/NegativeParseTest.cpp - malformed-input diagnostics ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Table-driven negative paths for the textual-IR front end: every
// malformed input must be rejected with the exact "line N: message"
// diagnostic, and inputs that parse but break structural invariants
// must draw the exact verifier message. Pinning the full strings keeps
// the diagnostics (which rac prints to users and ralfuzz reproducers
// rely on) from silently regressing.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

struct ParseCase {
  const char *Name;
  const char *Input;
  const char *ExpectedError; ///< exact "line N: message"
};

const ParseCase ParseCases[] = {
    {"MissingModuleKeyword", "modul {\n}\n", "line 1: expected 'module'"},
    {"UnexpectedCharacter", "module { $ }\n",
     "line 1: unexpected character '$'"},
    {"StrayTopLevelIdent", "module {\n  gadget\n}\n",
     "line 2: expected 'array' or 'func'"},
    {"NegativeArraySize", "module {\n  array @a : int[-4]\n}\n",
     "line 2: negative array size"},
    {"BadRegisterClass", "module {\n  array @a : bool[4]\n}\n",
     "line 2: expected register class 'int' or 'flt'"},
    {"DuplicateArray",
     "module {\n  array @a : int[4]\n  array @a : int[4]\n}\n",
     "line 4: duplicate array @a"},
    {"FunctionWithoutBlocks", "module {\n  func @f {\n  }\n}\n",
     "line 3: function @f has no blocks"},
    {"UseOfUndefinedRegister",
     "module {\n"
     "  func @f {\n"
     "  block entry:\n"
     "    %x:int = addi %y, 1\n"
     "    ret\n"
     "  }\n"
     "}\n",
     "line 4: use of undefined register %y"},
    {"UnknownOpcode",
     "module {\n"
     "  func @f {\n"
     "  block entry:\n"
     "    %x:int = frobnicate 1\n"
     "    ret\n"
     "  }\n"
     "}\n",
     "line 4: unknown opcode 'frobnicate'"},
    {"RegisterClassRedefinition",
     "module {\n"
     "  func @f {\n"
     "  block entry:\n"
     "    %x:int = movi 0\n"
     "    %x:flt = movf 0.5\n"
     "    ret\n"
     "  }\n"
     "}\n",
     "line 5: register %x redefined with a different class"},
    {"BranchToUnknownBlock",
     "module {\n"
     "  func @f {\n"
     "  block entry:\n"
     "    jmp nowhere\n"
     "  }\n"
     "}\n",
     "line 5: reference to unknown block 'nowhere'"},
    {"UnknownArray",
     "module {\n"
     "  func @f {\n"
     "  block entry:\n"
     "    %i:int = movi 0\n"
     "    %x:int = load @ghost[%i]\n"
     "    ret\n"
     "  }\n"
     "}\n",
     "line 5: reference to unknown array @ghost"},
    {"TruncatedFunction",
     "module {\n"
     "  func @f {\n"
     "  block entry:\n"
     "    ret\n",
     "line 5: unexpected end of input inside function"},
};

class NegativeParse : public ::testing::TestWithParam<ParseCase> {};

TEST_P(NegativeParse, RejectsWithExactDiagnostic) {
  const ParseCase &C = GetParam();
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule(C.Input, M, Error)) << "input parsed unexpectedly";
  EXPECT_EQ(Error, C.ExpectedError);
}

INSTANTIATE_TEST_SUITE_P(Table, NegativeParse, ::testing::ValuesIn(ParseCases),
                         [](const auto &Info) { return Info.param.Name; });

//===--------------------------------------------------------------------===//
// Inputs that parse but fail verification.
//===--------------------------------------------------------------------===//

struct VerifyCase {
  const char *Name;
  const char *Input;
  const char *ExpectedError; ///< exact first verifier message
};

const VerifyCase VerifyCases[] = {
    {"UseBeforeDefiniteAssignment",
     // %x is defined only on the left arm but used at the join, so the
     // parser (textual order) accepts it and definite-assignment must
     // reject it.
     "module {\n"
     "  func @f {\n"
     "  block entry:\n"
     "    %c:int = movi 0\n"
     "    br eq %c, %c, left, right\n"
     "  block left:\n"
     "    %x:int = movi 1\n"
     "    jmp join\n"
     "  block right:\n"
     "    jmp join\n"
     "  block join:\n"
     "    %y:int = addi %x, 1\n"
     "    ret\n"
     "  }\n"
     "}\n",
     "@f: in join: '%y.2:int = addi %x.1, 1': register %x may be used "
     "before definition"},
};

class NegativeVerify : public ::testing::TestWithParam<VerifyCase> {};

TEST_P(NegativeVerify, RejectsWithExactDiagnostic) {
  const VerifyCase &C = GetParam();
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(C.Input, M, Error)) << Error;
  auto Errors = verifyModule(M);
  ASSERT_FALSE(Errors.empty()) << "verifier accepted bad input";
  EXPECT_EQ(Errors.front(), C.ExpectedError);
}

INSTANTIATE_TEST_SUITE_P(Table, NegativeVerify,
                         ::testing::ValuesIn(VerifyCases),
                         [](const auto &Info) { return Info.param.Name; });

} // namespace
