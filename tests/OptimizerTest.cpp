//===- tests/OptimizerTest.cpp - LICM / strength reduction tests ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The optimizer models the paper's compilation pipeline in front of the
// allocator. It must preserve semantics exactly: every workload is run
// before and after optimization and compared bit-for-bit, and the
// optimized code must still verify and allocate.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "opt/Optimizer.h"
#include "regalloc/Allocator.h"
#include "regalloc/Coalesce.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ra;

namespace {

class OptimizerWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerWorkload, PreservesSemanticsAndVerifies) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);

  Module M;
  Function &F = W->Build(M);
  Simulator Sim(M);
  MemoryImage Golden(M);
  W->Init(M, Golden);
  ExecutionResult GoldenRun = Sim.runVirtual(F, Golden);
  ASSERT_TRUE(GoldenRun.Ok) << GoldenRun.Error;

  OptStats S = optimizeFunction(F);
  (void)S;
  auto Errors = verifyFunction(M, F);
  ASSERT_TRUE(Errors.empty()) << Errors.front();

  MemoryImage Mem(M);
  W->Init(M, Mem);
  ExecutionResult Run = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(Run.Ok) << Run.Error;
  EXPECT_TRUE(Mem == Golden) << "optimization changed program results";
  EXPECT_EQ(Run.IntReturn, GoldenRun.IntReturn);
  EXPECT_EQ(Run.FloatReturn, GoldenRun.FloatReturn);

  // Optimized code must still allocate and still compute the same
  // results through physical registers.
  AllocatorConfig C;
  C.H = Heuristic::Briggs;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success);
  MemoryImage Mem2(M);
  W->Init(M, Mem2);
  ExecutionResult Run2 = Sim.runAllocated(F, A, Mem2);
  ASSERT_TRUE(Run2.Ok) << Run2.Error;
  EXPECT_TRUE(Mem2 == Golden);
}

INSTANTIATE_TEST_SUITE_P(AllRoutines, OptimizerWorkload, [] {
  std::vector<std::string> Names;
  for (const Workload &W : allWorkloads())
    Names.push_back(W.Routine);
  return ::testing::ValuesIn(Names);
}());

TEST(OptimizerUnits, HoistsInvariantOutOfLoop) {
  // for (i = 0; i < 10; ++i) { t = n * 4; a[i] = t }  — t must move out.
  Module M;
  uint32_t A = M.newArray("a", 16, RegClass::Int);
  Function &F = M.newFunction("hoist");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  VRegId I = B.iReg("i"), N = B.iReg("n"), Lim = B.iReg("lim");
  B.movI(0, I);
  B.movI(7, N);
  B.movI(10, Lim);
  B.jmp(Head);
  B.setInsertPoint(Head);
  B.br(CmpKind::LT, I, Lim, Body, Exit);
  B.setInsertPoint(Body);
  VRegId T = B.mulI(N, 4); // invariant
  B.store(A, I, T);
  B.addI(I, 1, I);
  B.jmp(Head);
  B.setInsertPoint(Exit);
  B.ret();

  unsigned BodySizeBefore = F.block(Body).Insts.size();
  unsigned Hoisted = hoistLoopInvariants(F);
  EXPECT_GE(Hoisted, 1u);
  EXPECT_LT(F.block(Body).Insts.size(), BodySizeBefore);
  EXPECT_TRUE(verifyFunction(M, F).empty());

  // The hoisted computation sits in a preheader, not in the old entry.
  bool FoundInLoop = false;
  for (const Instruction &I2 : F.block(Body).Insts)
    if (I2.Op == Opcode::MulI)
      FoundInLoop = true;
  EXPECT_FALSE(FoundInLoop);
}

TEST(OptimizerUnits, StrengthReducesAddressComputation) {
  // for (i = 0; i < 8; ++i) { x = i * 24; a[...] uses x } — the mulI
  // becomes an induction variable updated by 24.
  Module M;
  uint32_t A = M.newArray("a", 256, RegClass::Int);
  Function &F = M.newFunction("sr");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Body = B.newBlock("body");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  VRegId I = B.iReg("i"), Lim = B.iReg("lim");
  B.movI(0, I);
  B.movI(8, Lim);
  B.jmp(Head);
  B.setInsertPoint(Head);
  B.br(CmpKind::LT, I, Lim, Body, Exit);
  B.setInsertPoint(Body);
  VRegId X = B.mulI(I, 24);
  B.store(A, X, I);
  B.addI(I, 1, I);
  B.jmp(Head);
  B.setInsertPoint(Exit);
  B.ret();

  // Golden semantics before.
  Simulator Sim(M);
  MemoryImage Golden(M);
  ExecutionResult G = Sim.runVirtual(F, Golden);
  ASSERT_TRUE(G.Ok);

  unsigned Created = reduceStrength(F);
  EXPECT_EQ(Created, 1u);
  EXPECT_TRUE(verifyFunction(M, F).empty());

  // No multiply remains in the loop body.
  for (const Instruction &I2 : F.block(Body).Insts)
    EXPECT_NE(I2.Op, Opcode::MulI);

  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(Mem == Golden);
}

TEST(OptimizerUnits, StructuredLoopsAlreadyHavePreheaders) {
  // KernelBuilder's forLoop emits "jmp head" from the initializing
  // block, which already acts as a preheader — so insertion is a no-op
  // on the structured workloads.
  const Workload *W = findWorkload("DGEFA");
  Module M;
  Function &F = W->Build(M);
  EXPECT_EQ(insertPreheaders(F), 0u);
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(OptimizerUnits, ConditionalEntryLoopGetsAPreheader) {
  // entry: br (a < b) head, exit — the loop header is entered by a
  // conditional edge, so a preheader block must be synthesized; a
  // second run must then be a no-op.
  Module M;
  Function &F = M.newFunction("condloop");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Head = B.newBlock("head");
  uint32_t Exit = B.newBlock("exit");
  B.setInsertPoint(Entry);
  VRegId I = B.iReg("i"), Lim = B.iReg("lim");
  B.movI(0, I);
  B.movI(4, Lim);
  B.br(CmpKind::LT, I, Lim, Head, Exit);
  B.setInsertPoint(Head);
  B.addI(I, 1, I);
  B.br(CmpKind::LT, I, Lim, Head, Exit);
  B.setInsertPoint(Exit);
  B.ret();

  unsigned First = insertPreheaders(F);
  EXPECT_EQ(First, 1u);
  EXPECT_EQ(insertPreheaders(F), 0u) << "second run must be a no-op";
  EXPECT_TRUE(verifyFunction(M, F).empty());

  // Semantics: i counts to 4 either way.
  Simulator Sim(M);
  MemoryImage Mem(M);
  ExecutionResult R = Sim.runVirtual(F, Mem);
  EXPECT_TRUE(R.Ok);
}

} // namespace

//===--------------------------------------------------------------------===//
// Negative cases: what the optimizer must NOT touch.
//===--------------------------------------------------------------------===//

namespace {

struct LoopFixture {
  ra::Module M;
  ra::Function *F;
  uint32_t Entry, Head, Body, Exit;
  ra::VRegId I, Lim;

  LoopFixture() {
    using namespace ra;
    F = &M.newFunction("fix");
    IRBuilder B(M, *F);
    Entry = B.newBlock("entry");
    Head = B.newBlock("head");
    Body = B.newBlock("body");
    Exit = B.newBlock("exit");
    B.setInsertPoint(Entry);
    I = B.iReg("i");
    Lim = B.iReg("lim");
    B.movI(0, I);
    B.movI(4, Lim);
    B.jmp(Head);
    B.setInsertPoint(Head);
    B.br(CmpKind::LT, I, Lim, Body, Exit);
  }

  /// Fills the body with \p Fill, closes the loop, and returns.
  template <typename CallableT> void finish(CallableT Fill) {
    using namespace ra;
    IRBuilder B(M, *F);
    B.setInsertPoint(Body);
    Fill(B);
    B.addI(I, 1, I);
    B.jmp(Head);
    B.setInsertPoint(Exit);
    B.ret();
  }
};

TEST(OptimizerNegative, DoesNotHoistLoads) {
  using namespace ra;
  LoopFixture T;
  uint32_t Arr = T.M.newArray("a", 8, RegClass::Int);
  T.finish([&](IRBuilder &B) {
    VRegId Zero = B.movI(0); // hoistable constant
    VRegId V = B.load(Arr, Zero); // NOT hoistable: memory may change
    B.store(Arr, Zero, B.addI(V, 1));
  });
  hoistLoopInvariants(*T.F);
  bool LoadInLoop = false;
  for (const Instruction &I : T.F->block(T.Body).Insts)
    if (I.Op == Opcode::Load)
      LoadInLoop = true;
  EXPECT_TRUE(LoadInLoop) << "loads must stay in the loop";
  EXPECT_TRUE(verifyFunction(T.M, *T.F).empty());
}

TEST(OptimizerNegative, DoesNotHoistTrappingOps) {
  using namespace ra;
  LoopFixture T;
  T.finish([&](IRBuilder &B) {
    VRegId X = B.movF(4.0);    // hoistable
    B.fsqrt(X);                // must NOT be speculated
    VRegId A = B.movI(10);
    VRegId Bv = B.movI(2);
    B.div(A, Bv);              // must NOT be speculated
  });
  hoistLoopInvariants(*T.F);
  bool SqrtInLoop = false, DivInLoop = false;
  for (const Instruction &I : T.F->block(T.Body).Insts) {
    if (I.Op == Opcode::FSqrt)
      SqrtInLoop = true;
    if (I.Op == Opcode::Div)
      DivInLoop = true;
  }
  EXPECT_TRUE(SqrtInLoop);
  EXPECT_TRUE(DivInLoop);
}

TEST(OptimizerNegative, DoesNotHoistMultiDefValues) {
  using namespace ra;
  LoopFixture T;
  ra::VRegId Acc = ra::InvalidVReg;
  {
    IRBuilder B(T.M, *T.F);
    B.setInsertPoint(T.Entry);
    // (rebuild entry additions is awkward; define acc in body twice)
  }
  T.finish([&](IRBuilder &B) {
    Acc = B.iReg("acc");
    B.movI(1, Acc);   // two defs of acc inside the loop:
    B.addI(Acc, 2, Acc);
  });
  unsigned Hoisted = hoistLoopInvariants(*T.F);
  (void)Hoisted;
  unsigned DefsInBody = 0;
  for (const Instruction &I : T.F->block(T.Body).Insts)
    if (I.hasDef() && I.defReg() == Acc)
      ++DefsInBody;
  EXPECT_EQ(DefsInBody, 2u) << "multi-def values must not move";
}

TEST(OptimizerNegative, StrengthReductionSkipsNonIVMultiplies) {
  using namespace ra;
  LoopFixture T;
  uint32_t Arr = T.M.newArray("a", 64, RegClass::Int);
  ra::VRegId X = ra::InvalidVReg;
  T.finish([&](IRBuilder &B) {
    X = B.load(Arr, B.movI(0));
    B.store(Arr, B.movI(1), B.mulI(X, 3)); // x is not an IV
  });
  unsigned Created = reduceStrength(*T.F);
  EXPECT_EQ(Created, 0u);
}

TEST(OptimizerStats, ReportsWorkOnWorkloads) {
  using namespace ra;
  Module M;
  Function &F = buildDGEFA(M);
  OptStats S = optimizeFunction(F);
  EXPECT_GT(S.InstructionsHoisted, 0u);
  EXPECT_GT(S.IVsCreated, 0u);
}

} // namespace

//===--------------------------------------------------------------------===//
// Dead-code elimination.
//===--------------------------------------------------------------------===//

namespace {

TEST(DeadCodeTest, RemovesUnusedChains) {
  using namespace ra;
  Module M;
  Function &F = M.newFunction("dce");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Live = B.movI(1);
  VRegId DeadA = B.movI(2);
  VRegId DeadB = B.addI(DeadA, 3); // uses DeadA, itself unused
  (void)DeadB;
  B.ret(Live);

  unsigned Removed = eliminateDeadCode(F);
  EXPECT_EQ(Removed, 2u) << "the whole dead chain must go";
  EXPECT_EQ(F.numInstructions(), 2u);
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(DeadCodeTest, KeepsEffectsAndTraps) {
  using namespace ra;
  Module M;
  uint32_t Arr = M.newArray("a", 4, RegClass::Int);
  Function &F = M.newFunction("dce2");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId One = B.movI(1);
  B.store(Arr, Zero, One);     // effect: must stay
  VRegId DeadDiv = B.div(One, One); // could trap: must stay
  (void)DeadDiv;
  B.ret();

  unsigned Before = F.numInstructions();
  eliminateDeadCode(F);
  EXPECT_EQ(F.numInstructions(), Before)
      << "stores and trapping ops are never dead-code-eliminated";
}

} // namespace

//===--------------------------------------------------------------------===//
// Conservative coalescing.
//===--------------------------------------------------------------------===//

namespace {

TEST(ConservativeCoalesceTest, StillMergesEasyCopies) {
  using namespace ra;
  Module M;
  uint32_t Arr = M.newArray("arr", 4, RegClass::Int);
  Function &F = M.newFunction("cc");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId A = B.movI(7);
  VRegId Bv = B.copy(A);
  B.store(Arr, Zero, Bv);
  B.ret();

  CFG G = CFG::compute(F);
  CoalesceStats S = coalesceAll(F, G, CoalescePolicy::Conservative,
                                MachineInfo::rtpc());
  EXPECT_EQ(S.CopiesRemoved, 1u);
  EXPECT_TRUE(verifyFunction(M, F).empty());
}

TEST(ConservativeCoalesceTest, EndToEndEquivalentToAggressive) {
  using namespace ra;
  for (const char *Name : {"SVD", "DISSIP"}) {
    const Workload *W = findWorkload(Name);
    Module M1, M2;
    Function &F1 = W->Build(M1);
    Function &F2 = W->Build(M2);
    AllocatorConfig C1, C2;
    C1.H = C2.H = Heuristic::Briggs;
    C2.Coalescing = CoalescePolicy::Conservative;
    AllocationResult A1 = allocateRegisters(F1, C1);
    AllocationResult A2 = allocateRegisters(F2, C2);
    ASSERT_TRUE(A1.Success && A2.Success) << Name;

    Simulator S1(M1), S2(M2);
    MemoryImage Mem1(M1), Mem2(M2);
    W->Init(M1, Mem1);
    W->Init(M2, Mem2);
    ExecutionResult R1 = S1.runAllocated(F1, A1, Mem1);
    ExecutionResult R2 = S2.runAllocated(F2, A2, Mem2);
    ASSERT_TRUE(R1.Ok && R2.Ok) << Name;
    EXPECT_TRUE(Mem1 == Mem2) << Name << ": policies must agree on results";
  }
}

} // namespace
