//===- tests/SupportTest.cpp - support library unit tests -----------------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/Rng.h"
#include "support/Status.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "support/TriangularBitMatrix.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <set>

using namespace ra;

namespace {

TEST(BitVectorTest, BasicSetTestReset) {
  BitVector BV(130);
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_TRUE(BV.none());
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 3u);
  BV.reset(64);
  EXPECT_FALSE(BV.test(64));
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVectorTest, TestAndSet) {
  BitVector BV(10);
  EXPECT_TRUE(BV.testAndSet(3));
  EXPECT_FALSE(BV.testAndSet(3));
  EXPECT_TRUE(BV.test(3));
}

TEST(BitVectorTest, SetAllRespectsTailBits) {
  BitVector BV(70);
  BV.setAll();
  EXPECT_EQ(BV.count(), 70u);
  BV.resize(75);
  EXPECT_EQ(BV.count(), 70u) << "new bits default to false";
}

TEST(BitVectorTest, ResizeWithValueTrue) {
  BitVector BV(10);
  BV.resize(80, true);
  EXPECT_EQ(BV.count(), 70u);
  for (unsigned I = 0; I < 10; ++I)
    EXPECT_FALSE(BV.test(I));
  for (unsigned I = 10; I < 80; ++I)
    EXPECT_TRUE(BV.test(I));
}

TEST(BitVectorTest, SetOperations) {
  BitVector A(100), B(100);
  A.set(1);
  A.set(50);
  B.set(50);
  B.set(99);
  EXPECT_TRUE(A.intersects(B));
  BitVector U = A;
  EXPECT_TRUE(U.unionWith(B));
  EXPECT_FALSE(U.unionWith(B)) << "second union changes nothing";
  EXPECT_EQ(U.count(), 3u);
  BitVector I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(50));
  BitVector S = A;
  S.subtract(B);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_TRUE(S.test(1));
}

TEST(BitVectorTest, FindFirstAndNext) {
  BitVector BV(200);
  EXPECT_EQ(BV.findFirst(), -1);
  BV.set(7);
  BV.set(64);
  BV.set(199);
  EXPECT_EQ(BV.findFirst(), 7);
  EXPECT_EQ(BV.findNext(7), 64);
  EXPECT_EQ(BV.findNext(64), 199);
  EXPECT_EQ(BV.findNext(199), -1);
}

TEST(BitVectorTest, ForEachMatchesReferenceSet) {
  Rng R(123);
  BitVector BV(500);
  std::set<unsigned> Ref;
  for (int I = 0; I < 200; ++I) {
    unsigned Bit = unsigned(R.nextBelow(500));
    BV.set(Bit);
    Ref.insert(Bit);
  }
  std::set<unsigned> Seen;
  BV.forEachSetBit([&](unsigned Bit) { Seen.insert(Bit); });
  EXPECT_EQ(Seen, Ref);
  EXPECT_EQ(BV.count(), Ref.size());
}

TEST(TriangularBitMatrixTest, SymmetryAndDiagonal) {
  TriangularBitMatrix M(10);
  EXPECT_FALSE(M.test(3, 7));
  M.set(3, 7);
  EXPECT_TRUE(M.test(3, 7));
  EXPECT_TRUE(M.test(7, 3)) << "relation is symmetric";
  EXPECT_FALSE(M.test(4, 4)) << "diagonal is always false";
  M.clear(7, 3);
  EXPECT_FALSE(M.test(3, 7));
}

TEST(TriangularBitMatrixTest, TestAndSet) {
  TriangularBitMatrix M(5);
  EXPECT_TRUE(M.testAndSet(0, 4));
  EXPECT_FALSE(M.testAndSet(4, 0));
}

TEST(TriangularBitMatrixTest, DenseRandomAgainstReference) {
  Rng R(77);
  TriangularBitMatrix M(40);
  std::set<std::pair<unsigned, unsigned>> Ref;
  for (int I = 0; I < 300; ++I) {
    unsigned A = unsigned(R.nextBelow(40)), B = unsigned(R.nextBelow(40));
    if (A == B)
      continue;
    M.set(A, B);
    Ref.insert({std::min(A, B), std::max(A, B)});
  }
  for (unsigned A = 0; A < 40; ++A)
    for (unsigned B = A + 1; B < 40; ++B)
      EXPECT_EQ(M.test(A, B), Ref.count({A, B}) != 0);
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind UF(6);
  EXPECT_EQ(UF.numSets(), 6u);
  UF.unite(0, 1);
  UF.unite(2, 3);
  EXPECT_EQ(UF.numSets(), 4u);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_FALSE(UF.connected(1, 2));
  UF.unite(1, 3);
  EXPECT_TRUE(UF.connected(0, 2));
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, UniteIsIdempotent) {
  UnionFind UF(4);
  unsigned R1 = UF.unite(0, 1);
  unsigned R2 = UF.unite(0, 1);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, GrowAddsSingletons) {
  UnionFind UF(2);
  unsigned Id = UF.grow();
  EXPECT_EQ(Id, 2u);
  EXPECT_EQ(UF.numSets(), 3u);
  EXPECT_FALSE(UF.connected(0, Id));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, RangesRespectBounds) {
  Rng R(1);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(7), 7u);
    int64_t V = R.nextInRange(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(TableTest, FormattingHelpers) {
  EXPECT_EQ(Table::withCommas(0), "0");
  EXPECT_EQ(Table::withCommas(999), "999");
  EXPECT_EQ(Table::withCommas(596713), "596,713");
  EXPECT_EQ(Table::withCommas(-1234567), "-1,234,567");
  EXPECT_EQ(Table::fixed(1.349, 2), "1.35");
  EXPECT_EQ(Table::pctImprovement(101, 49), "51");
  EXPECT_EQ(Table::pctImprovement(0, 0), "0");
  EXPECT_EQ(Table::pctImprovement(100, 100), "0");
}

TEST(TableTest, RendersAlignedColumns) {
  Table T({"Name", "Value"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| Name   | Value |"), std::string::npos);
  EXPECT_NE(Out.find("| a      |     1 |"), std::string::npos);
  EXPECT_NE(Out.find("| longer |    22 |"), std::string::npos);
}

TEST(TimerTest, AccumulatesTime) {
  Timer T;
  T.start();
  volatile unsigned Sink = 0;
  for (unsigned I = 0; I < 100000; ++I)
    Sink += I;
  T.stop();
  EXPECT_GT(T.seconds(), 0.0);
  double First = T.seconds();
  T.start();
  T.stop();
  EXPECT_GE(T.seconds(), First);
  T.reset();
  EXPECT_EQ(T.seconds(), 0.0);
}

TEST(StatusTest, DefaultConstructedIsOk) {
  Status S;
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::Ok);
  EXPECT_EQ(S.toString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status S = Status::error(StatusCode::NonConvergence, "no coloring");
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::NonConvergence);
  EXPECT_EQ(S.message(), "no coloring");
  EXPECT_EQ(S.toString(), "non-convergence: no coloring");
}

TEST(StatusTest, ContextRendersOutermostFirst) {
  // Innermost call sites push first; the rendering walks back out.
  Status S = Status::error(StatusCode::AuditFailure, "r3 double-booked");
  S.addContext("pass 2");
  S.addContext("@dgefa");
  EXPECT_EQ(S.toString(), "audit-failure: @dgefa: pass 2: r3 double-booked");
}

TEST(StatusTest, AddContextIsNoOpOnOk) {
  Status S;
  S.addContext("should vanish");
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.toString(), "ok");
}

} // namespace
