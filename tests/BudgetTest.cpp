//===- tests/BudgetTest.cpp - resource governance and the ladder ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The resource-governance contract, from the token up through the
// allocator's degradation ladder:
//
//  * the Budget token itself: latched trips, charge/refuse accounting,
//    rearm semantics, cumulative telemetry;
//  * a deadline trip mid-coloring retries under linear scan and then
//    spill-everything — the function always comes back usable
//    (Degraded), audited, with a Status naming the exhausted resource;
//  * a memory budget refuses the interference matrix *before* the
//    bytes exist;
//  * governance off (the default) and governance with generous limits
//    are byte-identical to each other.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "regalloc/AllocationAudit.h"
#include "regalloc/Allocator.h"
#include "sim/Simulator.h"
#include "support/Budget.h"
#include "workloads/MegaKernel.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace ra;

namespace {

//===--------------------------------------------------------------------===//
// The token.
//===--------------------------------------------------------------------===//

TEST(BudgetTest, UngovernedNeverTrips) {
  Budget B;
  EXPECT_FALSE(B.governed());
  for (int I = 0; I < 200; ++I)
    EXPECT_TRUE(B.checkpoint());
  EXPECT_FALSE(B.expired());
  EXPECT_FALSE(B.exhausted());
  // Charges are always granted, but the peak is still tracked so
  // ungoverned runs report memory telemetry too.
  EXPECT_TRUE(B.tryCharge(1234));
  EXPECT_EQ(B.peakBytes(), 1234u);
  B.release(1234);
  EXPECT_EQ(B.currentBytes(), 0u);
  EXPECT_TRUE(B.status().ok());
}

TEST(BudgetTest, DeadlineTripsAndLatches) {
  Budget B;
  B.arm(/*DeadlineSeconds=*/1e-9, /*MemoryBytes=*/0);
  EXPECT_TRUE(B.governed());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // The amortized poll reads the clock at most every 64 calls, so
  // within 65 checkpoints the trip must be noticed — and once latched,
  // every later poll answers false without touching the clock.
  bool Tripped = false;
  for (int I = 0; I < 65 && !Tripped; ++I)
    Tripped = !B.checkpoint();
  EXPECT_TRUE(Tripped);
  EXPECT_TRUE(B.exhausted());
  EXPECT_FALSE(B.checkpoint());
  EXPECT_TRUE(B.expired());
  Status S = B.status();
  EXPECT_EQ(S.code(), StatusCode::DeadlineExceeded);
  EXPECT_NE(S.toString().find("deadline"), std::string::npos);
}

TEST(BudgetTest, ExpiredNoticesTripWithoutCounterWrap) {
  Budget B;
  B.arm(1e-9, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Phase boundaries use the forced check: one call suffices even
  // though the amortized counter has not wrapped.
  EXPECT_TRUE(B.expired());
  EXPECT_TRUE(B.exhausted());
}

TEST(BudgetTest, MemoryChargeRefuseAndPeak) {
  Budget B;
  B.arm(0, /*MemoryBytes=*/1000);
  EXPECT_TRUE(B.tryCharge(600));
  EXPECT_EQ(B.currentBytes(), 600u);
  EXPECT_EQ(B.peakBytes(), 600u);
  // A refusal charges nothing and latches the token.
  EXPECT_FALSE(B.tryCharge(600));
  EXPECT_EQ(B.currentBytes(), 600u);
  EXPECT_TRUE(B.exhausted());
  EXPECT_FALSE(B.checkpoint());
  Status S = B.status();
  EXPECT_EQ(S.code(), StatusCode::MemoryBudgetExceeded);
  EXPECT_NE(S.toString().find("memory budget"), std::string::npos);
  B.release(600);
  EXPECT_EQ(B.currentBytes(), 0u);
  EXPECT_EQ(B.peakBytes(), 600u); // high-water mark survives release
}

TEST(BudgetTest, RearmClearsLatchKeepsTelemetry) {
  Budget B;
  B.arm(1e-9, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(B.expired());
  uint64_t Served = B.checkpoints();
  EXPECT_GT(Served, 0u);
  B.rearm();
  EXPECT_FALSE(B.exhausted());
  // Telemetry is cumulative across rungs: a rearm must not zero it.
  EXPECT_GE(B.checkpoints(), Served);
}

TEST(BudgetTest, ScopedChargeReleasesOnScopeExit) {
  Budget B;
  B.arm(0, 1 << 20);
  {
    ScopedCharge C(&B, 4096);
    EXPECT_TRUE(C.granted());
    EXPECT_EQ(B.currentBytes(), 4096u);
  }
  EXPECT_EQ(B.currentBytes(), 0u);
  // A null governor always grants and never dereferences anything.
  ScopedCharge Free(nullptr, 1ull << 40);
  EXPECT_TRUE(Free.granted());
}

//===--------------------------------------------------------------------===//
// The ladder: every budget trip degrades, never fails.
//===--------------------------------------------------------------------===//

/// One random function, generous enough shape to have real pressure.
Function &buildSubject(Module &M) { return buildRandomProgram(M, 42); }

TEST(AllocatorBudgetTest, SlowPhaseDeadlineDegradesNeverFails) {
  Module M;
  Function &F = buildSubject(M);
  AllocatorConfig C;
  C.Audit = true;
  C.DeadlineSeconds = 0.001;
  C.FaultInject.SlowPhaseMicros = 5000; // every pass top blows the 1ms
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_EQ(A.Diag.code(), StatusCode::DeadlineExceeded)
      << A.Diag.toString();
  EXPECT_TRUE(auditAllocation(F, A).empty());
  EXPECT_GT(A.BudgetCheckpoints, 0u);
}

TEST(AllocatorBudgetTest, GraphMemorySpikeRetriesUnderLinearScan) {
  Module M;
  Function &F = buildSubject(M);
  AllocatorConfig C;
  C.Audit = true;
  C.MemoryBudgetBytes = 64ull << 20; // plenty — until the spike
  C.FaultInject.GraphMemorySpike = true;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_EQ(A.Diag.code(), StatusCode::MemoryBudgetExceeded)
      << A.Diag.toString();
  // The spike only inflates the coloring estimate; linear scan has no
  // triangular matrix, so the first retry rung absorbs the trip.
  EXPECT_NE(A.Diag.toString().find("linear-scan"), std::string::npos)
      << A.Diag.toString();
  EXPECT_TRUE(auditAllocation(F, A).empty());
}

TEST(AllocatorBudgetTest, TinyMemoryBudgetRefusesMatrixUpFront) {
  // mini.ramp's ~3000 ranges need ~600 KB of triangular matrix; a
  // 100 KB budget must refuse the build *before* allocating it and
  // still hand back a usable allocation from a cheaper rung.
  Module M;
  Function &F = megaKernelTestFamily()[0].Build(M);
  AllocatorConfig C;
  C.Audit = true;
  C.MemoryBudgetBytes = 100 << 10;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_EQ(A.Diag.code(), StatusCode::MemoryBudgetExceeded)
      << A.Diag.toString();
  EXPECT_TRUE(auditAllocation(F, A).empty());
}

TEST(AllocatorBudgetTest, LinearScanDeadlineFallsToSpillEverything) {
  Module M;
  Function &F = buildSubject(M);
  AllocatorConfig C;
  C.Audit = true;
  C.B = Backend::LinearScan;
  C.DeadlineSeconds = 0.001;
  C.FaultInject.SlowPhaseMicros = 5000;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  EXPECT_EQ(A.Outcome, AllocOutcome::Degraded);
  EXPECT_EQ(A.Diag.code(), StatusCode::DeadlineExceeded)
      << A.Diag.toString();
  // Linear scan was already the primary, so the only rung left is the
  // audited spill-everything bottom.
  EXPECT_NE(A.Diag.toString().find("spill-everything"), std::string::npos)
      << A.Diag.toString();
  EXPECT_TRUE(auditAllocation(F, A).empty());
}

TEST(AllocatorBudgetTest, GenerousBudgetsAreByteIdenticalToUngoverned) {
  Module M1, M2;
  Function &F1 = buildSubject(M1);
  Function &F2 = buildSubject(M2);

  AllocatorConfig Plain;
  AllocationResult A1 = allocateRegisters(F1, Plain);

  AllocatorConfig Governed = Plain;
  Governed.DeadlineSeconds = 3600;
  Governed.MemoryBudgetBytes = 1ull << 40;
  AllocationResult A2 = allocateRegisters(F2, Governed);

  ASSERT_TRUE(A1.Success && A2.Success);
  EXPECT_EQ(A1.Outcome, AllocOutcome::Converged);
  EXPECT_EQ(A2.Outcome, AllocOutcome::Converged);
  EXPECT_EQ(A1.ColorOf, A2.ColorOf);
  EXPECT_EQ(printFunction(M1, F1), printFunction(M2, F2));
  // Telemetry is the one permitted difference: absent when ungoverned,
  // populated when governed.
  EXPECT_EQ(A1.BudgetCheckpoints, 0u);
  EXPECT_GT(A2.BudgetCheckpoints, 0u);
  EXPECT_GT(A2.BudgetPeakBytes, 0u);
}

TEST(AllocatorBudgetTest, DegradedRunStillMatchesGoldenSimulation) {
  // A budget-degraded allocation is still a *correct* allocation: the
  // allocated run must reproduce the pre-allocation golden run.
  Module M;
  Function &F = buildSubject(M);
  Simulator Sim(M);
  MemoryImage GoldenMem(M);
  ExecutionResult Golden = Sim.runVirtual(F, GoldenMem);
  ASSERT_TRUE(Golden.Ok) << Golden.Error;

  AllocatorConfig C;
  C.Audit = true;
  C.DeadlineSeconds = 0.001;
  C.FaultInject.SlowPhaseMicros = 5000;
  AllocationResult A = allocateRegisters(F, C);
  ASSERT_TRUE(A.Success) << A.Diag.toString();
  ASSERT_EQ(A.Outcome, AllocOutcome::Degraded);

  MemoryImage Mem(M);
  ExecutionResult R = Sim.runAllocated(F, A, Mem);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.HasIntReturn, Golden.HasIntReturn);
  EXPECT_EQ(R.IntReturn, Golden.IntReturn);
  EXPECT_TRUE(Mem == GoldenMem);
}

TEST(AllocatorBudgetTest, ModuleUnderTinyBudgetsNeverFails) {
  // The acceptance bar: tiny budgets over a whole module produce only
  // Converged or Degraded functions — zero Failed — with every
  // Degraded diagnostic naming the exhausted resource.
  Module M;
  for (uint64_t S = 0; S < 6; ++S)
    buildRandomProgram(M, 9000 + S);
  AllocatorConfig C;
  C.Audit = true;
  C.Jobs = 2;
  C.DeadlineSeconds = 1e-5;
  ModuleAllocationResult R = allocateModule(M, C);
  ASSERT_EQ(R.Functions.size(), M.numFunctions());
  for (unsigned I = 0; I < M.numFunctions(); ++I) {
    const AllocationResult &A = R.Functions[I];
    ASSERT_TRUE(A.Success)
        << "@" << M.function(I).name() << ": " << A.Diag.toString();
    EXPECT_NE(A.Outcome, AllocOutcome::Failed);
    if (A.Outcome == AllocOutcome::Degraded)
      EXPECT_TRUE(A.Diag.code() == StatusCode::DeadlineExceeded ||
                  A.Diag.code() == StatusCode::MemoryBudgetExceeded)
          << A.Diag.toString();
    EXPECT_TRUE(auditAllocation(M.function(I), A).empty());
  }
}

//===--------------------------------------------------------------------===//
// Capacity estimation and the MegaKernel guard.
//===--------------------------------------------------------------------===//

TEST(CapacityTest, EstimateBytesScalesQuadratically) {
  EXPECT_EQ(InterferenceGraph::estimateBytes(0), 0u);
  // 50k nodes: the triangular bit matrix alone is ~156 MB.
  EXPECT_GT(InterferenceGraph::estimateBytes(50000), 150ull << 20);
  EXPECT_LT(InterferenceGraph::estimateBytes(50000), 200ull << 20);
  EXPECT_LT(InterferenceGraph::estimateBytes(1000),
            InterferenceGraph::estimateBytes(2000));
}

TEST(CapacityTest, MegaKernelGuardRefusesOverBudgetKernels) {
  const MegaKernel &Big = megaKernelFamily()[1]; // mega.ramp.50k
  // Unbounded budget: always Ok.
  EXPECT_TRUE(checkMegaKernelCapacity(Big, 0).ok());
  // Roomy budget: Ok.
  EXPECT_TRUE(checkMegaKernelCapacity(Big, 1ull << 30).ok());
  // 16 MB cannot hold a ~156 MB matrix: an actionable refusal naming
  // the kernel and the remedy, not a silent attempt.
  Status S = checkMegaKernelCapacity(Big, 16ull << 20);
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.code(), StatusCode::MemoryBudgetExceeded);
  EXPECT_NE(S.toString().find(Big.Name), std::string::npos);
  EXPECT_NE(S.toString().find("--mem-budget-mb"), std::string::npos);
}

} // namespace
