//===- tests/CoalesceTest.cpp - coalescing correctness contracts ----------===//
//
// Part of briggs-regalloc. SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Focused contracts for the Chaitin-style coalescer beyond the smoke
// cases in RegallocTest.cpp: copy subsumption must preserve program
// semantics exactly, a merge must preserve every interference the two
// ranges had (mapped onto the surviving root), copies whose operands
// interfere must never be merged, and the Briggs conservative test must
// refuse merges that would create a significant-degree node.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "regalloc/BuildGraph.h"
#include "regalloc/Coalesce.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <map>

using namespace ra;

namespace {

unsigned countCopies(const Function &F) {
  unsigned N = 0;
  for (const BasicBlock &B : F.blocks())
    for (const Instruction &I : B.Insts)
      N += I.isCopy();
  return N;
}

//===--------------------------------------------------------------------===//
// Copy subsumption correctness.
//===--------------------------------------------------------------------===//

TEST(CoalesceTest, SubsumptionPreservesSemanticsAndRemovesEveryCopy) {
  // A copy chain feeding arithmetic whose result is returned: after
  // coalescing no copy remains and the returned value is unchanged.
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId A = B.movI(21);
  VRegId C1 = B.copy(A);  // a dies here
  VRegId C2 = B.copy(C1); // chain: converges across rounds
  VRegId R = B.add(C2, C2);
  B.ret(R);

  Simulator Sim(M);
  MemoryImage GoldenMem(M);
  ExecutionResult Golden = Sim.runVirtual(F, GoldenMem);
  ASSERT_TRUE(Golden.Ok) << Golden.Error;
  ASSERT_TRUE(Golden.HasIntReturn);
  ASSERT_EQ(Golden.IntReturn, 42);

  CFG G = CFG::compute(F);
  CoalesceStats S = coalesceAll(F, G);
  EXPECT_EQ(S.CopiesRemoved, 2u);
  EXPECT_EQ(countCopies(F), 0u);
  ASSERT_TRUE(verifyFunction(M, F).empty());

  MemoryImage Mem(M);
  ExecutionResult After = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_EQ(After.IntReturn, Golden.IntReturn);
  EXPECT_TRUE(Mem == GoldenMem);
}

TEST(CoalesceTest, RecordsMergeProvenance) {
  Module M;
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId A = F.newVReg(RegClass::Int, "a");
  B.movI(9, A);
  VRegId C = F.newVReg(RegClass::Int, "b");
  B.copy(A, C);
  B.ret(C);

  CFG G = CFG::compute(F);
  CoalesceStats S = coalesceAll(F, G);
  ASSERT_EQ(S.CopiesRemoved, 1u);
  ASSERT_EQ(S.Merges.size(), 1u);
  const CoalescedCopy &CC = S.Merges[0];
  EXPECT_EQ(CC.Class, RegClass::Int);
  // One of the two names survived as the root; the other was merged
  // into it.
  EXPECT_TRUE((CC.Merged == "a" && CC.Into == "b") ||
              (CC.Merged == "b" && CC.Into == "a"))
      << CC.Merged << " into " << CC.Into;
  EXPECT_NE(CC.Merged, CC.Into);
}

//===--------------------------------------------------------------------===//
// Interference-preserving merges.
//===--------------------------------------------------------------------===//

TEST(CoalesceTest, MergePreservesEveryInterferenceOfBothRanges) {
  // A diamond with copies on both arms: whatever interfered with either
  // side of a merged copy must interfere with the surviving root.
  Module M;
  uint32_t Arr = M.newArray("arr", 8, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  uint32_t Entry = B.newBlock("entry");
  uint32_t Left = B.newBlock("left");
  uint32_t Right = B.newBlock("right");
  uint32_t Join = B.newBlock("join");

  B.setInsertPoint(Entry);
  VRegId Zero = F.newVReg(RegClass::Int, "zero");
  B.movI(0, Zero);
  VRegId N = F.newVReg(RegClass::Int, "n");
  B.movI(5, N);
  VRegId Keep = F.newVReg(RegClass::Int, "keep");
  B.movI(7, Keep);
  B.br(CmpKind::LT, Zero, N, Left, Right);

  B.setInsertPoint(Left);
  VRegId T = F.newVReg(RegClass::Int, "t");
  B.add(N, Keep, T);
  VRegId U = F.newVReg(RegClass::Int, "u");
  B.copy(T, U); // t dies: coalescable, but t interfered with keep/zero
  B.store(Arr, Zero, U);
  B.jmp(Join);

  B.setInsertPoint(Right);
  B.store(Arr, Zero, Keep);
  B.jmp(Join);

  B.setInsertPoint(Join);
  B.store(Arr, Zero, Keep);
  B.ret();

  // Interference before, keyed by name so the check survives the merge.
  CFG G = CFG::compute(F);
  Liveness Before = Liveness::compute(F, G);
  TriangularBitMatrix MBefore = buildInterferenceMatrix(F, Before);
  std::map<std::string, VRegId> IdOf;
  for (VRegId R = 0; R < F.numVRegs(); ++R)
    IdOf[F.vreg(R).Name] = R;

  CoalesceStats S = coalesceAll(F, G);
  ASSERT_GE(S.CopiesRemoved, 1u);
  ASSERT_TRUE(verifyFunction(M, F).empty());

  // Map every merged-away name onto its surviving root (merges can
  // chain across rounds, so resolve transitively).
  std::map<std::string, std::string> RootOf;
  for (const CoalescedCopy &CC : S.Merges)
    RootOf[CC.Merged] = CC.Into;
  auto Root = [&](std::string Name) {
    while (RootOf.count(Name))
      Name = RootOf[Name];
    return Name;
  };

  Liveness After = Liveness::compute(F, G);
  TriangularBitMatrix MAfter = buildInterferenceMatrix(F, After);
  for (VRegId X = 0; X < MBefore.numNodes(); ++X)
    for (VRegId Y = X + 1; Y < MBefore.numNodes(); ++Y) {
      if (!MBefore.test(X, Y))
        continue;
      VRegId RX = IdOf.at(Root(F.vreg(X).Name));
      VRegId RY = IdOf.at(Root(F.vreg(Y).Name));
      ASSERT_NE(RX, RY) << "interfering ranges " << F.vreg(X).Name
                        << " and " << F.vreg(Y).Name << " were merged";
      EXPECT_TRUE(MAfter.test(RX, RY))
          << "interference " << F.vreg(X).Name << " -- " << F.vreg(Y).Name
          << " lost by coalescing";
    }
}

//===--------------------------------------------------------------------===//
// No coalescing across interference.
//===--------------------------------------------------------------------===//

TEST(CoalesceTest, RefusesCopyWhoseOperandsInterfere) {
  // d = copy s, then both s and d are live (s used after the copy and d
  // modified): merging would conflate two simultaneously-live values.
  Module M;
  uint32_t Arr = M.newArray("arr", 4, RegClass::Int);
  Function &F = M.newFunction("f");
  IRBuilder B(M, F);
  B.setInsertPoint(B.newBlock("entry"));
  VRegId Zero = B.movI(0);
  VRegId S = F.newVReg(RegClass::Int, "s");
  B.movI(3, S);
  VRegId D = F.newVReg(RegClass::Int, "d");
  B.copy(S, D);
  B.addI(D, 1, D);       // d diverges from s
  B.store(Arr, Zero, S); // s still live: s -- d interference
  B.store(Arr, Zero, D);
  B.ret();

  Simulator Sim(M);
  MemoryImage GoldenMem(M);
  ExecutionResult Golden = Sim.runVirtual(F, GoldenMem);
  ASSERT_TRUE(Golden.Ok) << Golden.Error;

  CFG G = CFG::compute(F);
  CoalesceStats St = coalesceAll(F, G);
  EXPECT_EQ(St.CopiesRemoved, 0u);
  EXPECT_TRUE(St.Merges.empty());
  EXPECT_EQ(countCopies(F), 1u) << "interfering copy must survive";

  MemoryImage Mem(M);
  ExecutionResult After = Sim.runVirtual(F, Mem);
  ASSERT_TRUE(After.Ok) << After.Error;
  EXPECT_TRUE(Mem == GoldenMem);
}

TEST(CoalesceTest, ConservativeRefusesSignificantDegreeMerge) {
  // s and d do not interfere, but their union would have two neighbors
  // of degree >= k (k = 2): Briggs' conservative test must refuse what
  // Chaitin's aggressive rule merges.
  auto BuildCase = [](Module &M) -> Function & {
    Function &F = M.newFunction("f");
    IRBuilder B(M, F);
    B.setInsertPoint(B.newBlock("entry"));
    VRegId N1 = F.newVReg(RegClass::Int, "n1");
    B.movI(1, N1);
    VRegId N2 = F.newVReg(RegClass::Int, "n2");
    B.movI(2, N2);
    VRegId S = F.newVReg(RegClass::Int, "s");
    B.movI(3, S);
    VRegId D = F.newVReg(RegClass::Int, "d");
    B.copy(S, D); // s's last use: no s -- d edge
    VRegId X = B.add(N1, D);
    VRegId Y = B.add(N2, X);
    B.ret(Y);
    return F;
  };

  Module MA;
  Function &FA = BuildCase(MA);
  CFG GA = CFG::compute(FA);
  CoalesceStats Aggressive = coalesceAll(FA, GA);
  EXPECT_EQ(Aggressive.CopiesRemoved, 1u)
      << "aggressive baseline: non-interfering copy merges";

  Module MC;
  Function &FC = BuildCase(MC);
  CFG GC = CFG::compute(FC);
  CoalesceStats Conservative = coalesceAll(
      FC, GC, CoalescePolicy::Conservative, MachineInfo(2, 2));
  EXPECT_EQ(Conservative.CopiesRemoved, 0u)
      << "merge would create a node with k significant neighbors";
  EXPECT_EQ(countCopies(FC), 1u);
}

} // namespace
