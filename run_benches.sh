#!/bin/sh
# Regenerates every reproduced table/figure (see EXPERIMENTS.md).
set -e
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && echo "==== $b ====" && "$b"
done
