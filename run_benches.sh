#!/bin/sh
# Regenerates every reproduced table/figure (see EXPERIMENTS.md) and the
# BENCH_allocator.json perf telemetry each binary merges its section into.
# That includes backend_compare's per-backend entries (graph-coloring.*
# and linear-scan.* under the backend_compare section), which double as
# a coloring-vs-linear-scan differential check.
#
#   usage: run_benches.sh [BUILD_DIR]    (default: build)
#
# Set BENCH_JSON to redirect the telemetry file. Set RA_TRACE to a path
# to additionally capture a Chrome/Perfetto trace of rac over the sample
# programs; an unwritable trace path is a hard error (structured
# diagnostic on stderr, non-zero exit), never a silent drop.
set -e

BUILD_DIR="${1:-build}"
BENCH_JSON="${BENCH_JSON:-BENCH_allocator.json}"

# Every allocation behind a published number must pass the independent
# post-allocation audit (the bench binaries also force C.Audit on).
RA_AUDIT=1
export RA_AUDIT

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' does not exist — build first" \
       "(cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

# Pre-flight the trace destination before spending minutes on benches;
# rac itself repeats the check (io-error) at write time.
if [ -n "${RA_TRACE:-}" ]; then
  trace_dir=$(dirname -- "$RA_TRACE")
  if [ ! -d "$trace_dir" ] || [ ! -w "$trace_dir" ]; then
    echo "run_benches: $RA_TRACE: io-error: trace output directory" \
         "'$trace_dir' is not writable" >&2
    exit 1
  fi
fi

found=0
for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  found=1
  echo "==== $b ===="
  "$b" --bench-json "$BENCH_JSON"
done

if [ "$found" -eq 0 ]; then
  echo "error: no bench binaries under '$BUILD_DIR/bench'" >&2
  exit 1
fi

if [ -n "${RA_TRACE:-}" ]; then
  echo "==== trace: rac over tools/samples -> $RA_TRACE ===="
  "$BUILD_DIR"/tools/rac tools/samples/*.ral --quiet \
      --trace="$RA_TRACE" || {
    echo "run_benches: $RA_TRACE: io-error: rac failed writing trace" >&2
    exit 1
  }
fi

echo "==== telemetry merged into $BENCH_JSON ===="
