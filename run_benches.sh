#!/bin/sh
# Regenerates every reproduced table/figure (see EXPERIMENTS.md) and the
# BENCH_allocator.json perf telemetry each binary merges its section into.
#
#   usage: run_benches.sh [BUILD_DIR]    (default: build)
#
# Set BENCH_JSON to redirect the telemetry file.
set -e

BUILD_DIR="${1:-build}"
BENCH_JSON="${BENCH_JSON:-BENCH_allocator.json}"

# Every allocation behind a published number must pass the independent
# post-allocation audit (the bench binaries also force C.Audit on).
RA_AUDIT=1
export RA_AUDIT

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' does not exist — build first" \
       "(cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

found=0
for b in "$BUILD_DIR"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  found=1
  echo "==== $b ===="
  "$b" --bench-json "$BENCH_JSON"
done

if [ "$found" -eq 0 ]; then
  echo "error: no bench binaries under '$BUILD_DIR/bench'" >&2
  exit 1
fi

echo "==== telemetry merged into $BENCH_JSON ===="
