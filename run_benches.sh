#!/bin/sh
# Regenerates every reproduced table/figure (see EXPERIMENTS.md) and the
# BENCH_allocator.json perf telemetry each binary merges its section into.
# That includes backend_compare's per-backend entries (graph-coloring.*
# and linear-scan.* under the backend_compare section), which double as
# a coloring-vs-linear-scan differential check.
#
#   usage: run_benches.sh [BUILD_DIR] [--jobs N]    (default: build)
#
# --jobs N caps the thread sweep of the scaling benches
# (micro_coloring's pool sweep and megakernel_scaling's in-graph Select
# sweep); default 8.
#
# Set BENCH_JSON to redirect the telemetry file. Set RA_TRACE to a path
# to additionally capture a Chrome/Perfetto trace of rac over the sample
# programs; an unwritable trace path is a hard error (structured
# diagnostic on stderr, non-zero exit), never a silent drop.
set -e

BUILD_DIR=build
JOBS=8
while [ $# -gt 0 ]; do
  case "$1" in
    --jobs)
      [ $# -ge 2 ] || { echo "error: --jobs needs a value" >&2; exit 2; }
      JOBS="$2"; shift 2 ;;
    -*)
      echo "usage: run_benches.sh [BUILD_DIR] [--jobs N]" >&2; exit 2 ;;
    *)
      BUILD_DIR="$1"; shift ;;
  esac
done
BENCH_JSON="${BENCH_JSON:-BENCH_allocator.json}"

# Every allocation behind a published number must pass the independent
# post-allocation audit (the bench binaries also force C.Audit on).
RA_AUDIT=1
export RA_AUDIT

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' does not exist — build first" \
       "(cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

# Pre-flight the trace destination before spending minutes on benches;
# rac itself repeats the check (io-error) at write time.
if [ -n "${RA_TRACE:-}" ]; then
  trace_dir=$(dirname -- "$RA_TRACE")
  if [ ! -d "$trace_dir" ] || [ ! -w "$trace_dir" ]; then
    echo "run_benches: $RA_TRACE: io-error: trace output directory" \
         "'$trace_dir' is not writable" >&2
    exit 1
  fi
fi

# The expected binary set is derived from the bench sources themselves
# (every bench/*.cpp except the shared BenchJson library), so adding a
# bench without building it — or a build that silently dropped one — is
# a hard error here, never a silently thinner telemetry file.
script_dir=$(dirname -- "$0")
found=0
for src in "$script_dir"/bench/*.cpp; do
  name=$(basename "$src" .cpp)
  [ "$name" = "BenchJson" ] && continue
  b="$BUILD_DIR/bench/$name"
  if [ ! -x "$b" ] || [ ! -f "$b" ]; then
    echo "error: bench binary '$b' is missing — rebuild" \
         "(cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
  found=1
  echo "==== $b ===="
  # The scaling benches take the thread-sweep cap; the figure benches
  # are single-threaded by design.
  case "$name" in
    micro_coloring|megakernel_scaling)
      "$b" --jobs "$JOBS" --bench-json "$BENCH_JSON" ;;
    *)
      "$b" --bench-json "$BENCH_JSON" ;;
  esac
done

if [ "$found" -eq 0 ]; then
  echo "error: no bench sources under '$script_dir/bench'" >&2
  exit 1
fi

if [ -n "${RA_TRACE:-}" ]; then
  echo "==== trace: rac over tools/samples -> $RA_TRACE ===="
  "$BUILD_DIR"/tools/rac tools/samples/*.ral --quiet \
      --trace="$RA_TRACE" || {
    echo "run_benches: $RA_TRACE: io-error: rac failed writing trace" >&2
    exit 1
  }
fi

echo "==== telemetry merged into $BENCH_JSON ===="
